(* Security- and consistency-focused tests beyond the per-module suites:
   non-inclusion proofs, auditor forensics, serializability under
   concurrency, promise correctness in every persistence mode, and codec
   robustness of ledger proofs. *)

open Glassdb_util
module Kv = Txnkit.Kv
module Ledger = Glassdb.Ledger
module Node = Glassdb.Node
module Cluster = Glassdb.Cluster
module Client = Glassdb.Client
module Auditor = Glassdb.Auditor

let in_sim f =
  let out = ref None in
  Sim.run (fun () -> out := Some (f ()));
  Option.get !out

(* --- SMT non-inclusion --- *)

let test_smt_absence_proofs () =
  let t =
    Mtree.Smt.set_batch (Mtree.Smt.create ())
      (List.init 100 (fun i -> (Printf.sprintf "key%d" i, string_of_int i)))
  in
  let root = Mtree.Smt.root_hash t in
  List.iter
    (fun k ->
      let p = Mtree.Smt.prove_absent t k in
      if not (Mtree.Smt.verify_absent ~root ~key:k p) then
        Alcotest.failf "absence proof failed for %s" k;
      Alcotest.(check bool) "absence size positive" true
        (Mtree.Smt.absence_proof_size_bytes p > 0))
    [ "missing"; "key100"; "zzz"; "" ];
  (* A present key must not be provable absent. *)
  (match Mtree.Smt.prove_absent t "key42" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "prove_absent accepted a present key");
  (* An absence proof must not verify for a *present* key. *)
  let p = Mtree.Smt.prove_absent t "missing" in
  Alcotest.(check bool) "absence proof is key-bound" false
    (Mtree.Smt.verify_absent ~root ~key:"key42" p);
  Alcotest.(check bool) "absence proof is root-bound" false
    (Mtree.Smt.verify_absent ~root:(Hash.of_string "bogus") ~key:"missing" p)

let prop_smt_absence =
  QCheck.Test.make ~name:"smt absence proofs verify for random maps" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 50)
              (pair (string_of_size (Gen.int_range 1 6)) small_string))
    (fun kvs ->
      let t = Mtree.Smt.set_batch (Mtree.Smt.create ()) kvs in
      let root = Mtree.Smt.root_hash t in
      List.for_all
        (fun k ->
          match Mtree.Smt.get t k with
          | Some _ -> true
          | None -> Mtree.Smt.verify_absent ~root ~key:k (Mtree.Smt.prove_absent t k))
        [ "absent-a"; "absent-b"; "x" ])

let test_trillian_absence () =
  in_sim (fun () ->
      let t = Trillian.create Trillian.default_config in
      for i = 0 to 30 do
        ignore (Trillian.put t (Printf.sprintf "d%d" i) "cert")
      done;
      ignore (Trillian.sequence t);
      let d = Trillian.digest t in
      match Trillian.get_verified_absent t "unregistered.example" with
      | None -> Alcotest.fail "no absence proof"
      | Some p ->
        Alcotest.(check bool) "verified absent" true
          (Trillian.verify_absent ~digest:d ~key:"unregistered.example" p);
        Alcotest.(check bool) "absent proof rejects present key" false
          (Trillian.verify_absent ~digest:d ~key:"d7" p);
        Alcotest.(check bool) "present key has no absence proof" true
          (Trillian.get_verified_absent t "d7" = None))

(* --- ledger proof codecs against malicious bytes --- *)

let test_ledger_proof_codec_roundtrip_and_garbage () =
  let l = ref (Ledger.create (Ledger.config (Storage.Node_store.create ()))) in
  for b = 0 to 9 do
    l :=
      Ledger.append_block !l ~time:0.
        ~writes:
          (List.init 5 (fun i ->
               { Ledger.wkey = Printf.sprintf "k%d" i;
                 wvalue = Printf.sprintf "v%d.%d" b i;
                 wtid = "t" }))
        ~txns:[]
  done;
  let d = Ledger.digest !l in
  let p = Ledger.prove_current !l "k3" in
  let bytes = Codec.to_string Ledger.encode_proof p in
  let p' = Codec.of_string Ledger.decode_proof bytes in
  Alcotest.(check bool) "roundtripped proof verifies" true
    (Ledger.verify_current ~digest:d ~key:"k3" ~value:(Some "v9.3") p');
  (* Bit-flip every 13th byte and require decode failure or verify failure. *)
  let corrupt i =
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor 0x40) else c)
      bytes
  in
  let i = ref 1 in
  while !i < String.length bytes do
    (match Codec.of_string Ledger.decode_proof (corrupt !i) with
     | exception _ -> ()
     | pc ->
       if Ledger.verify_current ~digest:d ~key:"k3" ~value:(Some "v9.3") pc
       then Alcotest.failf "corrupted proof at byte %d accepted" !i);
    i := !i + 13
  done;
  let ap = Ledger.prove_append_only !l ~old_block:4 in
  let ap_bytes = Codec.to_string Ledger.encode_append_proof ap in
  let ap' = Codec.of_string Ledger.decode_append_proof ap_bytes in
  Alcotest.(check int) "append proof size stable"
    (Ledger.append_proof_size_bytes ap)
    (Ledger.append_proof_size_bytes ap')

let test_ledger_batch_proof_dedup () =
  let l = ref (Ledger.create (Ledger.config (Storage.Node_store.create ()))) in
  for b = 0 to 4 do
    l :=
      Ledger.append_block !l ~time:0.
        ~writes:
          (List.init 40 (fun i ->
               { Ledger.wkey = Printf.sprintf "key-%03d" i;
                 wvalue = string_of_int b;
                 wtid = "t" }))
        ~txns:[]
  done;
  let proofs =
    List.init 10 (fun i -> Ledger.prove_current !l (Printf.sprintf "key-%03d" i))
  in
  let separate =
    List.fold_left (fun a p -> a + Ledger.proof_size_bytes p) 0 proofs
  in
  let batched = Ledger.batch_size_bytes proofs in
  Alcotest.(check bool) "batching shares chunks" true (batched < separate / 2)

(* --- verifiable scans on the ledger --- *)

let test_ledger_verified_scan () =
  let l = ref (Ledger.create (Ledger.config (Storage.Node_store.create ()))) in
  for b = 0 to 7 do
    l :=
      Ledger.append_block !l ~time:0.
        ~writes:
          (List.init 30 (fun i ->
               { Ledger.wkey = Printf.sprintf "acct-%03d" i;
                 wvalue = Printf.sprintf "%d.%d" b i;
                 wtid = "t" }))
        ~txns:[]
  done;
  let d = Ledger.digest !l in
  let lo = "acct-005" and hi = "acct-015" in
  let rows = Ledger.scan !l ~lo ~hi in
  Alcotest.(check int) "row count" 10 (List.length rows);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "latest values" true
        (String.length v > 1 && v.[0] = '7'))
    rows;
  let p = Ledger.prove_scan !l ~lo ~hi () in
  Alcotest.(check bool) "scan proof verifies" true
    (Ledger.verify_scan ~digest:d ~lo ~hi ~rows p);
  (* Omission, injection, and stale values are all rejected. *)
  Alcotest.(check bool) "omission rejected" false
    (Ledger.verify_scan ~digest:d ~lo ~hi ~rows:(List.tl rows) p);
  Alcotest.(check bool) "injection rejected" false
    (Ledger.verify_scan ~digest:d ~lo ~hi
       ~rows:(rows @ [ ("acct-014x", "fake") ]) p);
  let stale = List.map (fun (k, _) -> (k, "0.0")) rows in
  Alcotest.(check bool) "stale values rejected" false
    (Ledger.verify_scan ~digest:d ~lo ~hi ~rows:stale p);
  (* Historical scan at an earlier block. *)
  let rows4 = Ledger.scan ~block:4 !l ~lo ~hi in
  let p4 = Ledger.prove_scan !l ~lo ~hi ~block:4 () in
  Alcotest.(check bool) "historical scan verifies" true
    (Ledger.verify_scan ~digest:d ~lo ~hi ~rows:rows4 p4);
  Alcotest.(check bool) "old rows differ" true (rows4 <> rows)

(* --- auditor forensics --- *)

let with_cluster ?(shards = 2) ?(batching = true) ?(sync_persist = false)
    ?faults f =
  in_sim (fun () ->
      let cl =
        Cluster.create
          (Glassdb.Config.make ~shards ~batching ~sync_persist ?faults ())
      in
      Cluster.start cl;
      let v = f cl in
      Cluster.stop cl;
      v)

let test_auditor_gossip_consistent_views () =
  with_cluster (fun cl ->
      let c = Client.create cl ~id:1 ~sk:"pk" in
      let a1 = Auditor.create cl ~id:1 and a2 = Auditor.create cl ~id:2 in
      List.iter
        (fun a -> Auditor.register_client a ~client:1 ~pk:"pk")
        [ a1; a2 ];
      for i = 0 to 20 do
        ignore
          (Client.execute c (fun h ->
               Client.put h (Printf.sprintf "g%d" (i mod 5)) (string_of_int i)))
      done;
      Sim.sleep 0.2;
      ignore (Auditor.audit_all a1);
      (* a2 lags behind a1 deliberately. *)
      Alcotest.(check bool) "gossip between honest auditors" true
        (Auditor.gossip a1 a2);
      ignore (Auditor.audit_all a2);
      Alcotest.(check bool) "gossip after catch-up" true (Auditor.gossip a1 a2);
      Alcotest.(check int) "no violations" 0
        (Auditor.failures a1 + Auditor.failures a2))

let test_user_digest_from_the_future () =
  with_cluster (fun cl ->
      let c = Client.create cl ~id:1 ~sk:"pk" in
      let a = Auditor.create cl ~id:1 in
      Auditor.register_client a ~client:1 ~pk:"pk";
      ignore (Client.execute c (fun h -> Client.put h "f" "1"));
      Sim.sleep 0.2;
      (* Client verifies so its digest advances past the auditor's. *)
      (match Client.verified_get_latest c "f" with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "verified get: %s" (Error.to_string e));
      let shard = Cluster.shard_of_key cl "f" in
      let user_digest = Client.digest_of_shard c shard in
      Alcotest.(check bool) "auditor catches up and accepts" true
        (Auditor.verify_user_digest a ~shard user_digest))

let test_client_gossip () =
  with_cluster (fun cl ->
      let a = Client.create cl ~id:1 ~sk:"k1" in
      let b = Client.create cl ~id:2 ~sk:"k2" in
      ignore (Client.execute a (fun h -> Client.put h "gs" "1"));
      Sim.sleep 0.2;
      (* a verifies (digest advances); b is stale. *)
      (match Client.verified_get_latest a "gs" with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "verified get: %s" (Error.to_string e));
      (match Client.gossip a b with
       | Ok () -> ()
       | Error e ->
         Alcotest.failf "gossip between honest users: %s" (Error.to_string e));
      let shard = Cluster.shard_of_key cl "gs" in
      Alcotest.(check bool) "stale user caught up" true
        (Ledger.digest_equal
           (Client.digest_of_shard a shard)
           (Client.digest_of_shard b shard));
      Alcotest.(check int) "no violations" 0
        (Client.verification_failures a + Client.verification_failures b))

let test_gossip_fork_detected_under_packet_loss () =
  (* A user restoring a forked digest must see [Proof_invalid] from gossip
     even when the lossy link forces proof fetches to retry. *)
  let faults = Faults.create ~drop:0.05 ~seed:9 () in
  with_cluster ~shards:1 ~faults (fun cl ->
      let mk id sk =
        Client.create ~rpc_timeout:0.05 ~rpc_retries:6 ~retry_backoff:0.01 cl
          ~id ~sk
      in
      let a = mk 1 "k1" and b = mk 2 "k2" in
      for i = 0 to 9 do
        ignore
          (Client.execute a (fun h -> Client.put h "gf" (string_of_int i)))
      done;
      Sim.sleep 0.3;
      (match Client.verified_get_latest a "gf" with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "verified get: %s" (Error.to_string e));
      (* b restores a fork: same block number as a's view, different root. *)
      let d = Client.digest_of_shard a 0 in
      Client.adopt_digest b ~shard:0
        { d with Ledger.root = Hash.kv "evil" "root" };
      (match Client.gossip a b with
       | Error (Error.Proof_invalid _) -> ()
       | Ok () -> Alcotest.fail "forked digest passed gossip"
       | Error e ->
         Alcotest.failf "expected Proof_invalid, got %s" (Error.to_string e));
      Alcotest.(check bool) "violation counted" true
        (Client.verification_failures a > 0))

let test_checkpoint_truncates_wal () =
  with_cluster ~shards:1 (fun cl ->
      let c = Client.create cl ~id:1 ~sk:"k" in
      for i = 0 to 19 do
        ignore (Client.execute c (fun h -> Client.put h (Printf.sprintf "w%d" i) "v"))
      done;
      Sim.sleep 0.3 (* everything persisted *);
      let nd = Cluster.node cl 0 in
      let before = Node.wal_records nd in
      Alcotest.(check bool) "wal non-empty before checkpoint" true (before > 0);
      Node.checkpoint nd;
      Alcotest.(check int) "wal empty after checkpoint" 0 (Node.wal_records nd);
      (* Crash + recovery after a checkpoint must still serve all data
         (it lives in the ledger now). *)
      Cluster.crash_node cl 0;
      Cluster.recover_node cl 0;
      Sim.sleep 0.2;
      match Client.execute c (fun h -> Client.get h "w7") with
      | Ok (Some "v", _) -> ()
      | _ -> Alcotest.fail "data lost after checkpointed recovery")

(* --- promises under every persistence mode --- *)

let promise_roundtrip ?batching ?sync_persist () =
  with_cluster ?batching ?sync_persist (fun cl ->
      let c =
        Client.create ~rpc_timeout:1.0 ~verify_delay:0.05
          cl ~id:1 ~sk:"k"
      in
      (* Write the same keys repeatedly so multi-version prediction is
         exercised. *)
      for i = 0 to 29 do
        match
          Client.execute c (fun h ->
              Client.put h (Printf.sprintf "p%d" (i mod 4)) (string_of_int i))
        with
        | Ok (_, promises) -> Client.queue_promises c promises
        | Error e -> Alcotest.failf "commit %d: %s" i (Error.to_string e)
      done;
      Sim.sleep 0.5;
      let vs = Client.flush_verifications c () in
      let keys = List.fold_left (fun a v -> a + v.Client.v_keys) 0 vs in
      Alcotest.(check int) "all promises verified" 30 keys;
      Alcotest.(check int) "no failures" 0 (Client.verification_failures c))

let test_promises_batched_mode () = promise_roundtrip ()

let test_no_ba_predictions_with_readonly_participants () =
  (* Regression: a cross-shard transaction whose slice on some shard is
     read-only must not consume a block position there (it never produces
     a block), or every later promise on that shard lands one block late. *)
  with_cluster ~shards:2 ~batching:false (fun cl ->
      let c =
        Client.create ~rpc_timeout:1.0 ~verify_delay:0.02
          cl ~id:1 ~sk:"k"
      in
      (* Find keys on both shards. *)
      let key_on shard =
        let rec go i =
          let k = Printf.sprintf "ro%d" i in
          if Cluster.shard_of_key cl k = shard then k else go (i + 1)
        in
        go 0
      in
      let k0 = key_on 0 and k1 = key_on 1 in
      ignore (Client.execute c (fun h -> Client.put h k0 "init0"));
      ignore (Client.execute c (fun h -> Client.put h k1 "init1"));
      Sim.sleep 0.2;
      for i = 0 to 19 do
        (* Read shard 0, write shard 1: shard 0's slice is read-only. *)
        (match
           Client.execute c (fun h ->
               ignore (Client.get h k0);
               Client.put h k1 (Printf.sprintf "w%d" i))
         with
         | Ok (_, ps) -> Client.queue_promises c ps
         | Error e -> Alcotest.failf "txn %d: %s" i (Error.to_string e));
        (* Interleave writes on shard 0 whose promises must stay exact. *)
        (match
           Client.execute c (fun h -> Client.put h k0 (Printf.sprintf "x%d" i))
         with
         | Ok (_, ps) -> Client.queue_promises c ps
         | Error e -> Alcotest.failf "shard0 txn %d: %s" i (Error.to_string e))
      done;
      Sim.sleep 0.5;
      let vs = Client.flush_verifications c () in
      List.iter
        (fun v ->
          if not v.Client.v_ok then Alcotest.fail "promise verification failed")
        vs;
      Alcotest.(check int) "all verified" 40
        (List.fold_left (fun a v -> a + v.Client.v_keys) 0 vs);
      Alcotest.(check int) "no failures" 0 (Client.verification_failures c))

let test_promises_no_batching () =
  promise_roundtrip ~batching:false ()

let test_promises_sync_persist () =
  promise_roundtrip ~sync_persist:true ()

(* --- serializability: concurrent increments never lose updates --- *)

let test_serializable_counter () =
  with_cluster ~shards:2 (fun cl ->
      let setup = Client.create cl ~id:0 ~sk:"k" in
      ignore (Client.execute setup (fun h -> Client.put h "ctr" "0"));
      let committed = ref 0 in
      let finished = ref 0 in
      let done_iv = Sim.Ivar.create () in
      let workers = 6 in
      for w = 1 to workers do
        Sim.spawn (fun () ->
            let c = Client.create cl ~id:w ~sk:"k" in
            for _ = 1 to 20 do
              match
                Client.execute c (fun h ->
                    let v = int_of_string (Option.get (Client.get h "ctr")) in
                    Client.put h "ctr" (string_of_int (v + 1)))
              with
              | Ok _ -> incr committed
              | Error _ -> ()
            done;
            incr finished;
            if !finished = workers then Sim.Ivar.fill done_iv ())
      done;
      Sim.Ivar.read done_iv;
      match Client.execute setup (fun h -> Client.get h "ctr") with
      | Ok (Some v, _) ->
        Alcotest.(check int) "no lost updates" !committed (int_of_string v)
      | _ -> Alcotest.fail "final read failed")

let prop_occ_no_lost_updates =
  QCheck.Test.make ~name:"occ: concurrent increments are serializable"
    ~count:10
    QCheck.(int_range 2 5)
    (fun workers ->
      with_cluster ~shards:1 (fun cl ->
          let setup = Client.create cl ~id:0 ~sk:"k" in
          ignore (Client.execute setup (fun h -> Client.put h "x" "0"));
          let committed = ref 0 and finished = ref 0 in
          let done_iv = Sim.Ivar.create () in
          for w = 1 to workers do
            Sim.spawn (fun () ->
                let c = Client.create cl ~id:w ~sk:"k" in
                for _ = 1 to 8 do
                  match
                    Client.execute c (fun h ->
                        let v = int_of_string (Option.get (Client.get h "x")) in
                        Client.put h "x" (string_of_int (v + 1)))
                  with
                  | Ok _ -> incr committed
                  | Error _ -> ()
                done;
                incr finished;
                if !finished = workers then Sim.Ivar.fill done_iv ())
          done;
          Sim.Ivar.read done_iv;
          match Client.execute setup (fun h -> Client.get h "x") with
          | Ok (Some v, _) -> int_of_string v = !committed
          | _ -> false))

(* --- WAL-based recovery property --- *)

let prop_recovery_preserves_committed_writes =
  QCheck.Test.make ~name:"crash+recover never loses committed writes"
    ~count:10
    QCheck.(int_range 1 30)
    (fun n ->
      with_cluster ~shards:1 (fun cl ->
          let c =
            Client.create ~rpc_timeout:0.05 ~verify_delay:0.1
              cl ~id:1 ~sk:"k"
          in
          let expected = Hashtbl.create 16 in
          for i = 0 to n - 1 do
            let k = Printf.sprintf "r%d" (i mod 7) in
            match
              Client.execute c (fun h -> Client.put h k (string_of_int i))
            with
            | Ok _ -> Hashtbl.replace expected k (string_of_int i)
            | Error _ -> ()
          done;
          Cluster.crash_node cl 0;
          Sim.sleep 0.1;
          Cluster.recover_node cl 0;
          Sim.sleep 0.3;
          Hashtbl.fold
            (fun k v acc ->
              acc
              &&
              match Client.execute c (fun h -> Client.get h k) with
              | Ok (Some v', _) -> String.equal v v'
              | _ -> false)
            expected true))

(* --- dist-layer timeout handling --- *)

let test_dead_shard_read_times_out_not_hangs () =
  with_cluster ~shards:2 (fun cl ->
      let c =
        Client.create ~rpc_timeout:0.05 ~verify_delay:0.1
          cl ~id:1 ~sk:"k"
      in
      ignore (Client.execute c (fun h -> Client.put h "a" "1"));
      Cluster.crash_node cl (Cluster.shard_of_key cl "a");
      let t0 = Sim.now () in
      (match Client.execute c (fun h -> Client.get h "a") with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "read from dead shard succeeded");
      (* Bounded by the cluster RPC timeout (1 s default), not hanging. *)
      Alcotest.(check bool) "bounded by timeout" true (Sim.now () -. t0 < 2.5))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "security"
    [ ("smt-absence",
       [ Alcotest.test_case "absence proofs" `Quick test_smt_absence_proofs;
         Alcotest.test_case "trillian verified absence" `Quick test_trillian_absence ]
       @ qsuite [ prop_smt_absence ]);
      ("ledger-proofs",
       [ Alcotest.test_case "codec roundtrip + corruption" `Quick
           test_ledger_proof_codec_roundtrip_and_garbage;
         Alcotest.test_case "batched proofs dedup chunks" `Quick
           test_ledger_batch_proof_dedup;
         Alcotest.test_case "verifiable range scan" `Quick
           test_ledger_verified_scan ]);
      ("auditor",
       [ Alcotest.test_case "gossip consistent views" `Quick
           test_auditor_gossip_consistent_views;
         Alcotest.test_case "user digest ahead of auditor" `Quick
           test_user_digest_from_the_future ]);
      ("gossip-checkpoint",
       [ Alcotest.test_case "user gossip" `Quick test_client_gossip;
         Alcotest.test_case "fork under packet loss" `Quick
           test_gossip_fork_detected_under_packet_loss;
         Alcotest.test_case "checkpoint + recovery" `Quick
           test_checkpoint_truncates_wal ]);
      ("promises",
       [ Alcotest.test_case "batched mode" `Quick test_promises_batched_mode;
         Alcotest.test_case "no-BA read-only participants" `Quick
           test_no_ba_predictions_with_readonly_participants;
         Alcotest.test_case "no-batching mode" `Quick test_promises_no_batching;
         Alcotest.test_case "sync-persist mode" `Quick test_promises_sync_persist ]);
      ("serializability",
       [ Alcotest.test_case "concurrent counter" `Quick test_serializable_counter ]
       @ qsuite [ prop_occ_no_lost_updates ]);
      ("recovery",
       qsuite [ prop_recovery_preserves_committed_writes ]
       @ [ Alcotest.test_case "dead shard times out" `Quick
             test_dead_shard_read_times_out_not_hangs ]) ]
