(* Tests for the benchmark kit: YCSB and TPC-C generators, the system
   adapters, and the closed-loop driver at miniature scale. *)

open Benchkit

let tiny_params =
  { System.default_params with
    System.shards = 2;
    persist_interval = 0.02;
    verify_delay = 0.05 }

let tiny_ycsb =
  { Ycsb.default_config with Ycsb.record_count = 200; ops_per_txn = 6 }

let tiny_setup sys =
  { Driver.sys; params = tiny_params; clients = 4; duration = 1.0;
    warmup = 0.2; seed = 7 }

(* --- YCSB generator --- *)

let test_ycsb_mix_ratios () =
  let rng = Glassdb_util.Rng.create 1 in
  let count_writes mix =
    let cfg = { tiny_ycsb with Ycsb.mix } in
    let ops = Ycsb.txn_ops rng cfg in
    List.length
      (List.filter (function Ycsb.Op_put _ -> true | _ -> false) ops)
  in
  Alcotest.(check int) "read-heavy writes" 1 (count_writes Ycsb.Read_heavy);
  Alcotest.(check int) "balanced writes" 3 (count_writes Ycsb.Balanced);
  Alcotest.(check int) "write-heavy writes" 4 (count_writes Ycsb.Write_heavy)

let test_ycsb_distinct_keys_in_txn () =
  let rng = Glassdb_util.Rng.create 2 in
  for _ = 1 to 20 do
    let ops = Ycsb.txn_ops rng tiny_ycsb in
    let keys =
      List.map (function Ycsb.Op_get k -> k | Ycsb.Op_put (k, _) -> k) ops
    in
    let distinct = List.sort_uniq compare keys in
    Alcotest.(check int) "no duplicate keys" (List.length keys)
      (List.length distinct)
  done

let test_workload_mixes () =
  let rng = Glassdb_util.Rng.create 3 in
  let n = 10_000 in
  let count pick p =
    let c = ref 0 in
    for _ = 1 to n do
      if pick rng = p then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let x_puts = count Ycsb.workload_x Ycsb.V_put in
  if x_puts < 0.45 || x_puts > 0.55 then
    Alcotest.failf "workload-X put ratio %f" x_puts;
  let y_puts = count Ycsb.workload_y Ycsb.V_put in
  if y_puts < 0.15 || y_puts > 0.25 then
    Alcotest.failf "workload-Y put ratio %f" y_puts

(* --- driver over each system --- *)

let run_tiny sys =
  Driver.run_ycsb (tiny_setup sys) tiny_ycsb

let check_sane r =
  Alcotest.(check bool) "made progress" true (r.Driver.r_commits > 50);
  Alcotest.(check bool) "throughput positive" true (r.Driver.r_throughput > 0.);
  Alcotest.(check int) "no verification failures" 0 r.Driver.r_failures;
  Alcotest.(check bool) "storage accounted" true (r.Driver.r_storage_bytes > 0)

let test_driver_glassdb () = check_sane (run_tiny Adapters.glassdb)
let test_driver_qldb () = check_sane (run_tiny Adapters.qldb)
let test_driver_ledgerdb () = check_sane (run_tiny Adapters.ledgerdb)
let test_driver_glassdb_no_ba () = check_sane (run_tiny Adapters.glassdb_no_ba)

let test_driver_glassdb_no_dv () =
  check_sane (run_tiny Adapters.glassdb_no_dv_no_ba)

let test_driver_deterministic () =
  let a = run_tiny Adapters.glassdb and b = run_tiny Adapters.glassdb in
  Alcotest.(check int) "same commits" a.Driver.r_commits b.Driver.r_commits;
  Alcotest.(check int) "same aborts" a.Driver.r_aborts b.Driver.r_aborts

let test_verified_workload_x () =
  let r =
    Driver.run_verified (tiny_setup Adapters.glassdb) tiny_ycsb
      ~pick:Ycsb.workload_x
  in
  Alcotest.(check bool) "ops completed" true (r.Driver.r_commits > 50);
  Alcotest.(check bool) "verifications happened" true (r.Driver.r_verifications > 0);
  Alcotest.(check int) "no failures" 0 r.Driver.r_failures;
  Alcotest.(check bool) "proof bytes recorded" true
    (Glassdb_util.Stats.count r.Driver.r_proof_bytes > 0)

let test_verified_workload_trillian () =
  let r =
    Driver.run_verified (tiny_setup Adapters.trillian) tiny_ycsb
      ~pick:Ycsb.workload_x
  in
  Alcotest.(check bool) "trillian ops completed" true (r.Driver.r_commits > 10);
  Alcotest.(check int) "no failures" 0 r.Driver.r_failures

let test_timeline_crash_dip () =
  let buckets =
    Driver.run_timeline
      { (tiny_setup Adapters.glassdb) with Driver.duration = 8.0 }
      ~load:(fun c -> Ycsb.load c tiny_ycsb)
      ~body:(fun client rng -> Ycsb.run_txn client rng tiny_ycsb)
      ~events:
        [ (3.0, fun a -> a.System.a_crash 0);
          (5.0, fun a -> a.System.a_recover 0) ]
  in
  let rate t =
    match List.assoc_opt t buckets with Some n -> n | None -> 0
  in
  (* Throughput during the crash window collapses relative to before. *)
  let before = rate 1. + rate 2. in
  let during = rate 4. in
  Alcotest.(check bool) "crash dips throughput" true
    (during * 4 < before);
  let after = rate 6. + rate 7. in
  Alcotest.(check bool) "recovers afterwards" true (after * 2 > before)

(* --- TPC-C --- *)

let tiny_tpcc =
  { Tpcc.warehouses = 2; districts = 2; customers = 5; items = 30 }

let test_tpcc_load_and_each_kind () =
  let out = ref None in
  Sim.run (fun () ->
      let admin = Adapters.glassdb.System.make tiny_params in
      admin.System.a_start ();
      let c = admin.System.a_client 0 in
      Tpcc.load c tiny_tpcc;
      let rng = Glassdb_util.Rng.create 5 in
      let failed = ref [] in
      List.iter
        (fun kind ->
          for _ = 1 to 5 do
            match Tpcc.run_txn c rng tiny_tpcc kind with
            | Ok () -> ()
            | Error e -> failed := (Tpcc.kind_name kind, e) :: !failed
          done)
        Tpcc.all_kinds;
      admin.System.a_stop ();
      out := Some !failed);
  match Option.get !out with
  | [] -> ()
  | fails ->
    Alcotest.failf "failed txns: %s"
      (String.concat "; "
         (List.map
            (fun (k, e) -> k ^ ":" ^ Glassdb_util.Error.to_string e)
            fails))

let test_tpcc_new_order_consistency () =
  (* d_next_o_id advances once per new-order; order info exists. *)
  Sim.run (fun () ->
      let admin = Adapters.glassdb.System.make tiny_params in
      admin.System.a_start ();
      let c = admin.System.a_client 0 in
      Tpcc.load c tiny_tpcc;
      let rng = Glassdb_util.Rng.create 6 in
      let before = ref 0 and after = ref 0 in
      let sum_next () =
        let total = ref 0 in
        ignore
          (c.System.c_execute (fun ctx ->
               for w = 0 to 1 do
                 for d = 0 to 1 do
                   total :=
                     !total
                     + int_of_string
                         (Option.value ~default:"0"
                            (ctx.System.tget (Printf.sprintf "d_next_o_id_%d_%d" w d)))
                 done
               done));
        !total
      in
      before := sum_next ();
      let committed = ref 0 in
      for _ = 1 to 10 do
        match Tpcc.run_txn c rng tiny_tpcc Tpcc.New_order with
        | Ok () -> incr committed
        | Error _ -> ()
      done;
      after := sum_next ();
      admin.System.a_stop ();
      Alcotest.(check int) "next_o_id advanced per commit" !committed
        (!after - !before))

let test_tpcc_mix () =
  let rng = Glassdb_util.Rng.create 7 in
  let n = 20_000 in
  let counts = Hashtbl.create 8 in
  for _ = 1 to n do
    let k = Tpcc.pick_kind rng in
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let share k =
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k))
    /. float_of_int n
  in
  if abs_float (share Tpcc.New_order -. 0.42) > 0.03 then
    Alcotest.failf "new-order share %f" (share Tpcc.New_order);
  if abs_float (share Tpcc.Payment -. 0.42) > 0.03 then
    Alcotest.failf "payment share %f" (share Tpcc.Payment);
  if abs_float (share Tpcc.Delivery -. 0.04) > 0.02 then
    Alcotest.failf "delivery share %f" (share Tpcc.Delivery)

let test_tpcc_driver_run () =
  let r =
    Driver.run_transactional (tiny_setup Adapters.glassdb)
      ~load:(fun c -> Tpcc.load c tiny_tpcc)
      ~body:(fun client rng ->
        Tpcc.run_txn client rng tiny_tpcc (Tpcc.pick_kind rng))
  in
  Alcotest.(check bool) "tpcc progress" true (r.Driver.r_commits > 20);
  Alcotest.(check int) "no verification failures" 0 r.Driver.r_failures

let () =
  Alcotest.run "benchkit"
    [ ("ycsb",
       [ Alcotest.test_case "mix ratios" `Quick test_ycsb_mix_ratios;
         Alcotest.test_case "distinct keys per txn" `Quick test_ycsb_distinct_keys_in_txn;
         Alcotest.test_case "verified workload mixes" `Quick test_workload_mixes ]);
      ("driver",
       [ Alcotest.test_case "glassdb" `Quick test_driver_glassdb;
         Alcotest.test_case "qldb" `Quick test_driver_qldb;
         Alcotest.test_case "ledgerdb" `Quick test_driver_ledgerdb;
         Alcotest.test_case "glassdb-no-BA" `Quick test_driver_glassdb_no_ba;
         Alcotest.test_case "glassdb-no-DV-no-BA" `Quick test_driver_glassdb_no_dv;
         Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
         Alcotest.test_case "workload-X verified" `Quick test_verified_workload_x;
         Alcotest.test_case "workload-X on trillian" `Quick test_verified_workload_trillian;
         Alcotest.test_case "crash timeline" `Quick test_timeline_crash_dip ]);
      ("tpcc",
       [ Alcotest.test_case "load + all kinds" `Quick test_tpcc_load_and_each_kind;
         Alcotest.test_case "new-order consistency" `Quick test_tpcc_new_order_consistency;
         Alcotest.test_case "mix ratios" `Quick test_tpcc_mix;
         Alcotest.test_case "driver run" `Quick test_tpcc_driver_run ]) ]
