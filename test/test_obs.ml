open Glassdb_util
module Cluster = Glassdb.Cluster
module Client = Glassdb.Client
module Auditor = Glassdb.Auditor

(* --- Lhist bucket boundaries --- *)

let test_lhist_boundaries () =
  let h = Lhist.create ~lo:1.0 ~buckets_per_octave:1 ~octaves:8 () in
  (* With 1 bucket/octave and lo=1: bucket 0 = (-inf, 1], bucket i =
     (2^(i-1), 2^i].  Exact powers of two must land on their upper edge,
     not spill into the next bucket. *)
  List.iter (Lhist.add h) [ -3.0; 0.5; 1.0; 1.5; 2.0; 2.1; 4.0; 300.0 ];
  let buckets = Lhist.buckets h in
  let count_in lo hi =
    match
      List.find_opt (fun (l, u, _) -> l = lo && u = hi) buckets
    with
    | Some (_, _, n) -> n
    | None -> 0
  in
  Alcotest.(check int) "first bucket holds <= lo" 3 (count_in 0.0 1.0);
  Alcotest.(check int) "(1,2] holds 1.5 and 2.0" 2 (count_in 1.0 2.0);
  Alcotest.(check int) "(2,4] holds 2.1 and 4.0" 2 (count_in 2.0 4.0);
  (* 300 > 2^8: clamps into the last bucket. *)
  Alcotest.(check int) "overflow clamps" 1 (count_in 128.0 256.0);
  Alcotest.(check int) "count exact" 8 (Lhist.count h);
  Alcotest.(check (float 1e-9)) "min exact" (-3.0) (Lhist.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 300.0 (Lhist.max_value h)

let test_lhist_percentile_error () =
  let h = Lhist.create () in
  let samples = List.init 1000 (fun i -> 1e-6 *. float_of_int (i + 1)) in
  List.iter (Lhist.add h) samples;
  (* Default geometry: 8 buckets/octave, g = 2^(1/8); the estimate must be
     within a factor g of the true nearest-rank sample. *)
  let g = Float.pow 2. (1. /. 8.) in
  List.iter
    (fun p ->
      let exact = List.nth samples (max 0 (int_of_float (Float.ceil (p *. 1000.)) - 1)) in
      let est = Lhist.percentile h p in
      if est > exact *. g +. 1e-15 || est < exact /. g -. 1e-15 then
        Alcotest.failf "p%.0f: estimate %g outside [%g/g, %g*g]" (100. *. p)
          est exact exact)
    [ 0.5; 0.9; 0.99; 1.0 ]

let test_lhist_merge () =
  let a = Lhist.create () and b = Lhist.create () in
  List.iter (Lhist.add a) [ 1e-3; 2e-3 ];
  List.iter (Lhist.add b) [ 4e-3; 8e-3 ];
  let m = Lhist.merge a b in
  Alcotest.(check int) "merged count" 4 (Lhist.count m);
  Alcotest.(check (float 1e-12)) "merged sum" 15e-3 (Lhist.sum m);
  let incompatible = Lhist.create ~buckets_per_octave:4 () in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Lhist.merge: incompatible geometries") (fun () ->
      ignore (Lhist.merge a incompatible))

(* --- Stats spill --- *)

let test_stats_spill () =
  let s = Stats.create () in
  let n = 10_000 in
  for i = 1 to n do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check bool) "spilled beyond threshold" false (Stats.is_exact s);
  Alcotest.(check int) "count exact" n (Stats.count s);
  Alcotest.(check (float 1e-6)) "mean exact"
    (float_of_int (n + 1) /. 2.)
    (Stats.mean s);
  let g = Float.pow 2. (1. /. 8.) in
  List.iter
    (fun p ->
      let exact = Float.ceil (p *. float_of_int n) in
      let est = Stats.percentile s p in
      if est > exact *. g || est < exact /. g then
        Alcotest.failf "spilled p%.0f: %g vs exact %g" (100. *. p) est exact)
    [ 0.5; 0.99 ];
  (* Below the threshold percentiles stay nearest-rank exact. *)
  let s2 = Stats.create () in
  for i = 1 to 100 do
    Stats.add s2 (float_of_int i)
  done;
  Alcotest.(check bool) "small stays exact" true (Stats.is_exact s2);
  (* Exact mode keeps the rounded-index convention: round(0.5 * 99) = 50,
     i.e. the 51st smallest of 1..100. *)
  Alcotest.(check (float 1e-9)) "small p50" 51. (Stats.percentile s2 0.5)

let test_hist_add_negative () =
  (* Regression: int_of_float truncates toward zero, which used to fold
     every sample in (-width, width) — including negatives — into bucket 0
     and misplace all negative samples.  Floor fixes the bucket index. *)
  let h = Stats.histogram ~bucket_width:1.0 in
  List.iter (Stats.hist_add h) [ -1.5; -0.2; 0.3; 1.7 ];
  let buckets = Stats.hist_buckets h in
  let count_at t =
    match List.find_opt (fun (lo, _) -> lo = t) buckets with
    | Some (_, n) -> n
    | None -> 0
  in
  Alcotest.(check int) "bucket [-2,-1)" 1 (count_at (-2.));
  Alcotest.(check int) "bucket [-1,0)" 1 (count_at (-1.));
  Alcotest.(check int) "bucket [0,1)" 1 (count_at 0.);
  Alcotest.(check int) "bucket [1,2)" 1 (count_at 1.)

(* --- exception safety --- *)

exception Boom

let test_measure_exception_safe () =
  let before = Work.snapshot () in
  (try
     ignore
       (Work.measure (fun () ->
            Work.note_hash ();
            raise Boom))
   with Boom -> ());
  let after = Work.snapshot () in
  Alcotest.(check int) "hash still counted globally" 1
    (after.Work.hashes - before.Work.hashes);
  (* A subsequent measure starts from a consistent baseline. *)
  let _, c = Work.measure (fun () -> Work.note_hash ()) in
  Alcotest.(check int) "next measure sees only its own work" 1 c.Work.hashes

let test_attribution_nested_and_exceptional () =
  Work.set_attribution true;
  Work.reset_attribution ();
  Work.with_component "outer" (fun () ->
      Work.note_hash ();
      Work.note_hash ();
      Work.with_component "inner" (fun () ->
          Work.note_hash ();
          Work.note_hash ();
          Work.note_hash ());
      Work.note_hash ());
  (try
     Work.with_component "outer" (fun () ->
         Work.note_hash ();
         raise Boom)
   with Boom -> ());
  let attr = Work.attribution () in
  let hashes c =
    match List.assoc_opt c attr with
    | Some w -> w.Work.hashes
    | None -> 0
  in
  (* Exclusive semantics: inner work is not double-charged to outer, and
     the scope closed by the exception still attributes its work. *)
  Alcotest.(check int) "outer self hashes" 4 (hashes "outer");
  Alcotest.(check int) "inner self hashes" 3 (hashes "inner");
  Work.set_attribution false

let test_charged_time_exception_safe () =
  Sim.run (fun () ->
      let t0 = Sim.now () in
      (try
         ignore
           (Cost.charged_time Cost.default (fun () ->
                Work.note_hash ();
                raise Boom))
       with Boom -> ());
      (* The work done before the raise is still charged as virtual time. *)
      Alcotest.(check bool) "time charged on exception" true (Sim.now () > t0))

(* --- metrics registry --- *)

let test_metrics_registry () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~name:"t.c" ~labels:[ ("k", "v") ] () in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:2.5 c;
  Alcotest.(check (float 1e-9)) "counter value" 3.5 (Obs.Metrics.counter_value c);
  (* Find-or-create returns the same underlying counter. *)
  let c' = Obs.Metrics.counter ~name:"t.c" ~labels:[ ("k", "v") ] () in
  Obs.Metrics.inc c';
  Alcotest.(check (float 1e-9)) "shared handle" 4.5 (Obs.Metrics.counter_value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.histogram: \"t.c\" is not a histogram")
    (fun () -> ignore (Obs.Metrics.histogram ~name:"t.c" ~labels:[ ("k", "v") ] ()));
  let h = Obs.Metrics.histogram ~name:"t.h" () in
  Obs.Metrics.observe h 0.25;
  let entries = Obs.Metrics.snapshot () in
  Alcotest.(check int) "two metrics registered" 2 (List.length entries);
  match entries with
  | [ ce; he ] ->
    Alcotest.(check string) "canonical order" "t.c" ce.Obs.Metrics.e_name;
    Alcotest.(check string) "fq name" "t.c{k=v}" (Obs.Metrics.fq_name ce);
    (match he.Obs.Metrics.e_value with
     | Obs.Metrics.Vhistogram hs ->
       Alcotest.(check int) "hist count" 1 hs.Obs.Metrics.h_count
     | _ -> Alcotest.fail "expected histogram entry")
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_gauge_sampling_cadence () =
  Obs.Metrics.reset ();
  let ticks = ref 0. in
  Obs.Metrics.gauge ~name:"t.g" (fun () ->
      ticks := !ticks +. 1.;
      !ticks);
  Sim.run (fun () ->
      let sampler = Obs.Sampler.start ~interval:0.1 () in
      Sim.sleep 0.55;
      Obs.Sampler.stop sampler);
  match Obs.Metrics.snapshot () with
  | [ { Obs.Metrics.e_value = Obs.Metrics.Vgauge (last, series); _ } ] ->
    (* First scrape at t=0.1, then every 0.1 until the stop at 0.55. *)
    Alcotest.(check int) "five samples" 5 (List.length series);
    List.iteri
      (fun i (t, v) ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "sample %d time" i)
          (0.1 *. float_of_int (i + 1))
          t;
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "sample %d value" i)
          (float_of_int (i + 1))
          v)
      series;
    Alcotest.(check (float 1e-9)) "last value" 5. last
  | _ -> Alcotest.fail "expected exactly the one gauge"

(* --- spans --- *)

let test_spans_disabled_and_nested () =
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  let r = Obs.Trace.span ~name:"off" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded while disabled" 0
    (Obs.Trace.event_count ());
  Obs.Trace.enable ();
  Sim.run (fun () ->
      Obs.Trace.span ~name:"outer" ~track:7 (fun () ->
          Sim.sleep 0.1;
          Obs.Trace.span ~name:"inner" ~track:7 (fun () -> Sim.sleep 0.2);
          Sim.sleep 0.3));
  (try Obs.Trace.span ~name:"raising" (fun () -> raise Boom)
   with Boom -> ());
  (match Obs.Trace.events () with
   | [ inner; outer; raising ] ->
     (* Completion order: inner closes before outer. *)
     Alcotest.(check string) "inner first" "inner" inner.Obs.Trace.ev_name;
     Alcotest.(check (float 1e-9)) "inner start" 0.1 inner.Obs.Trace.ev_ts;
     Alcotest.(check (float 1e-9)) "inner duration" 0.2 inner.Obs.Trace.ev_dur;
     Alcotest.(check string) "outer second" "outer" outer.Obs.Trace.ev_name;
     Alcotest.(check (float 1e-9)) "outer duration" 0.6 outer.Obs.Trace.ev_dur;
     (* The inner span nests inside the outer one on the same track. *)
     Alcotest.(check bool) "nested in time" true
       (inner.Obs.Trace.ev_ts >= outer.Obs.Trace.ev_ts
       && inner.Obs.Trace.ev_ts +. inner.Obs.Trace.ev_dur
          <= outer.Obs.Trace.ev_ts +. outer.Obs.Trace.ev_dur);
     Alcotest.(check string) "raising span recorded" "raising"
       raising.Obs.Trace.ev_name
   | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
  Obs.Trace.disable ()

(* --- end-to-end determinism --- *)

let traced_run () =
  Obs.Trace.enable ();
  Obs.Metrics.reset ();
  Obs.Attr.reset ();
  Obs.Attr.enable ();
  Sim.run (fun () ->
      let cluster = Cluster.create (Glassdb.Config.make ~shards:2 ()) in
      Cluster.start cluster;
      let sampler = Obs.Sampler.start ~interval:0.05 () in
      let client = Client.create cluster ~id:1 ~sk:"det-key" in
      let auditor = Auditor.create cluster ~id:0 in
      Auditor.register_client auditor ~client:1 ~pk:"det-key";
      for i = 1 to 40 do
        let key = Printf.sprintf "key-%02d" (i mod 10) in
        match
          Client.execute client (fun t -> Client.put t key (string_of_int i))
        with
        | Ok (_, promises) -> Client.queue_promises client promises
        | Error _ -> ()
      done;
      Sim.sleep 0.2;
      ignore (Client.flush_verifications client ~force:true ());
      ignore (Auditor.audit_all auditor);
      Obs.Sampler.stop sampler;
      Cluster.stop cluster);
  let out = (Obs.Export.trace_json (), Obs.Export.metrics_json ()) in
  Obs.Trace.disable ();
  Obs.Attr.disable ();
  out

let test_determinism () =
  let trace1, metrics1 = traced_run () in
  let trace2, metrics2 = traced_run () in
  Alcotest.(check bool) "trace non-trivial" true (String.length trace1 > 500);
  Alcotest.(check string) "byte-identical traces" trace1 trace2;
  Alcotest.(check string) "byte-identical metrics" metrics1 metrics2

let () =
  Alcotest.run "obs"
    [ ("lhist",
       [ Alcotest.test_case "bucket boundaries" `Quick test_lhist_boundaries;
         Alcotest.test_case "percentile error bound" `Quick
           test_lhist_percentile_error;
         Alcotest.test_case "merge" `Quick test_lhist_merge ]);
      ("stats",
       [ Alcotest.test_case "spill keeps percentiles bounded" `Quick
           test_stats_spill;
         Alcotest.test_case "hist_add negative samples" `Quick
           test_hist_add_negative ]);
      ("work",
       [ Alcotest.test_case "measure exception-safe" `Quick
           test_measure_exception_safe;
         Alcotest.test_case "nested + exceptional attribution" `Quick
           test_attribution_nested_and_exceptional;
         Alcotest.test_case "charged_time exception-safe" `Quick
           test_charged_time_exception_safe ]);
      ("metrics",
       [ Alcotest.test_case "registry" `Quick test_metrics_registry;
         Alcotest.test_case "gauge sampling cadence" `Quick
           test_gauge_sampling_cadence ]);
      ("trace",
       [ Alcotest.test_case "disabled + nested spans" `Quick
           test_spans_disabled_and_nested ]);
      ("end-to-end",
       [ Alcotest.test_case "identical runs, identical bytes" `Quick
           test_determinism ]) ]
