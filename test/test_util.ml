open Glassdb_util

let check_hex msg expected raw = Alcotest.(check string) msg expected (Hex.encode raw)

(* --- SHA-256 --- *)

let test_sha_vectors () =
  check_hex "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let test_sha_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding edges must match the one-shot
     reference; compare against incremental feeding in odd chunk sizes. *)
  List.iter
    (fun n ->
      let s = String.init n (fun i -> Char.chr (i land 0xff)) in
      let t = Sha256.init () in
      let rec feed pos chunk =
        if pos < n then begin
          let len = min chunk (n - pos) in
          Sha256.feed_bytes t ~off:pos ~len (Bytes.of_string s);
          feed (pos + len) (chunk + 3)
        end
      in
      feed 0 1;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Hex.encode (Sha256.digest_string s))
        (Hex.encode (Sha256.finalize t)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 127; 128; 129; 1000 ]

let test_hmac_vectors () =
  (* RFC 4231 test cases 1 and 2. *)
  check_hex "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?")

let prop_incremental_matches_oneshot =
  QCheck.Test.make ~name:"sha256 incremental = one-shot" ~count:200
    QCheck.(pair string string)
    (fun (a, b) ->
      let t = Sha256.init () in
      Sha256.feed_string t a;
      Sha256.feed_string t b;
      String.equal (Sha256.finalize t) (Sha256.digest_string (a ^ b)))

let stale_ctx =
  Invalid_argument "Sha256: context already finalized (reset before reuse)"

let test_sha_reset_reuse () =
  (* One context through many digests: every reset must behave exactly
     like a fresh init, including messages spanning >1 block and the
     empty message. *)
  let t = Sha256.init () in
  List.iter
    (fun s ->
      Sha256.reset t;
      Sha256.feed_string t s;
      Alcotest.(check string)
        (Printf.sprintf "reused ctx, len %d" (String.length s))
        (Hex.encode (Sha256.digest_string s))
        (Hex.encode (Sha256.finalize t)))
    [ "abc"; ""; String.make 200 'x'; "abc";
      String.init 1000 (fun i -> Char.chr (i land 0xff)) ]

let test_sha_use_after_finalize () =
  (* The single-use footgun: feeding or re-finalizing a finalized context
     must raise instead of silently producing a digest of stale state. *)
  let t = Sha256.init () in
  Sha256.feed_string t "abc";
  ignore (Sha256.finalize t);
  Alcotest.check_raises "feed after finalize" stale_ctx (fun () ->
      Sha256.feed_string t "x");
  Alcotest.check_raises "double finalize" stale_ctx (fun () ->
      ignore (Sha256.finalize t));
  (* reset clears the poisoned state *)
  Sha256.reset t;
  Sha256.feed_string t "abc";
  Alcotest.(check string) "reset clears the guard"
    (Hex.encode (Sha256.digest_string "abc"))
    (Hex.encode (Sha256.finalize t))

let test_sha_digest_into () =
  let t = Sha256.init () in
  Sha256.feed_string t "abc";
  let buf = Bytes.make 40 '\xff' in
  Sha256.digest_into t buf 5;
  Alcotest.(check string) "digest written at offset"
    (Hex.encode (Sha256.digest_string "abc"))
    (Hex.encode (Bytes.sub_string buf 5 32));
  Alcotest.(check string) "bytes before the offset untouched"
    (String.make 5 '\xff') (Bytes.sub_string buf 0 5);
  Alcotest.(check string) "bytes after the digest untouched"
    (String.make 3 '\xff') (Bytes.sub_string buf 37 3);
  let bounds = Invalid_argument "Sha256.digest_into" in
  let fresh () =
    let t = Sha256.init () in
    Sha256.feed_string t "abc";
    t
  in
  Alcotest.check_raises "negative offset" bounds (fun () ->
      Sha256.digest_into (fresh ()) (Bytes.create 32) (-1));
  Alcotest.check_raises "overflowing offset" bounds (fun () ->
      Sha256.digest_into (fresh ()) (Bytes.create 32) 1)

(* --- Hex --- *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      String.equal (Hex.decode (Hex.encode s)) s)

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Hex.decode "zz"))

(* --- Hash --- *)

let test_hash_domain_separation () =
  let data = "same bytes" in
  let all =
    [ Hash.of_string data; Hash.leaf data; Hash.kv data "";
      Hash.combine [ data ] ]
  in
  let distinct = List.sort_uniq String.compare all in
  Alcotest.(check int) "all four tags give distinct digests" 4
    (List.length distinct)

let test_hash_kv_unambiguous () =
  (* ("ab","c") must differ from ("a","bc"): the length prefix matters. *)
  Alcotest.(check bool) "kv not concat-ambiguous" false
    (Hash.equal (Hash.kv "ab" "c") (Hash.kv "a" "bc"))

let test_hash_combine_feed () =
  let frags = [ "alpha"; ""; "beta"; String.make 100 'z' ] in
  Alcotest.(check string) "combine_feed = combine"
    (Hex.encode (Hash.combine frags))
    (Hex.encode (Hash.combine_feed (fun push -> List.iter push frags)));
  (* Feeders may call the primitive ops mid-stream (the memoized item-hash
     pattern): primitives and aggregates use separate scratch contexts. *)
  Alcotest.(check string) "primitive calls inside a feeder are safe"
    (Hex.encode (Hash.combine [ Hash.leaf "a"; Hash.kv "k" "v" ]))
    (Hex.encode
       (Hash.combine_feed (fun push ->
            push (Hash.leaf "a");
            push (Hash.kv "k" "v"))))

let test_hash_digest_many () =
  let inputs = Array.init 17 (fun i -> String.make i 'q') in
  (* Byte-for-byte equal to the serial one-context-per-input digests, and
     Work charges one hash per input either way. *)
  let serial, sw =
    Work.measure (fun () -> Array.map Hash.of_string inputs)
  in
  let batched, bw =
    Work.measure (fun () -> Hash.digest_many (fun s push -> push s) inputs)
  in
  Alcotest.(check (array string)) "digest_many = serial digests"
    (Array.map Hex.encode serial) (Array.map Hex.encode batched);
  Alcotest.(check int) "identical hash accounting" sw.Work.hashes
    bw.Work.hashes;
  let pairs = [| ("a", "1"); ("bb", "22"); ("", "") |] in
  Alcotest.(check (array string)) "combine_many = per-input combines"
    (Array.map (fun (x, y) -> Hex.encode (Hash.combine [ x; y ])) pairs)
    (Array.map Hex.encode
       (Hash.combine_many
          (fun (x, y) push ->
            push x;
            push y)
          pairs))

(* --- Codec --- *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(map abs int)
    (fun n ->
      let s = Codec.to_string Codec.write_varint n in
      Codec.of_string Codec.read_varint s = n)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:200 QCheck.string (fun s ->
      Codec.of_string Codec.read_string (Codec.to_string Codec.write_string s)
      = s)

let prop_list_roundtrip =
  QCheck.Test.make ~name:"list roundtrip" ~count:200
    QCheck.(list small_string)
    (fun l ->
      let enc b = Codec.write_list b Codec.write_string in
      let dec r = Codec.read_list r Codec.read_string in
      Codec.of_string dec (Codec.to_string enc l) = l)

let test_codec_malformed () =
  let truncated () = ignore (Codec.of_string Codec.read_string "\x05ab") in
  (match truncated () with
   | exception Codec.Malformed _ -> ()
   | () -> Alcotest.fail "expected Malformed on truncated string");
  match Codec.of_string Codec.read_varint "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff" with
  | exception Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed on oversized varint"

let test_codec_trailing () =
  match Codec.of_string Codec.read_bool "\x01\x00" with
  | exception Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed on trailing bytes"

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs from parent" false
    (Int64.equal (Rng.int64 a) (Rng.int64 c))

let prop_int_below_in_range =
  QCheck.Test.make ~name:"int_below in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int_below rng bound in
      v >= 0 && v < bound)

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

(* --- Zipf --- *)

let test_zipf_uniform_when_theta_zero () =
  let rng = Rng.create 1 in
  let z = Zipf.create ~n:10 ~theta:0. in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Zipf.draw rng z in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "uniform bucket out of tolerance: %d" c)
    counts

let test_zipf_skew () =
  let rng = Rng.create 2 in
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let hot = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if Zipf.draw rng z < 10 then incr hot
  done;
  (* With theta=0.99, the top-10 ranks carry a large share of the mass. *)
  if !hot < total / 4 then
    Alcotest.failf "zipf not skewed enough: hot=%d" !hot

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf draws in range" ~count:200
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let z = Zipf.create ~n ~theta:0.9 in
      let v = Zipf.draw rng z and s = Zipf.scrambled rng z in
      v >= 0 && v < n && s >= 0 && s < n)

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile s 1.)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "percentile of empty" 0. (Stats.percentile s 0.9)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.;
  Stats.add b 3.;
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" 2 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2. (Stats.mean m)

let test_histogram () =
  let h = Stats.histogram ~bucket_width:1.0 in
  List.iter (Stats.hist_add h) [ 0.1; 0.2; 2.5 ];
  match Stats.hist_buckets h with
  | [ (0., 2); (1., 0); (2., 1) ] -> ()
  | other ->
    Alcotest.failf "unexpected buckets: %s"
      (String.concat ";"
         (List.map (fun (t, n) -> Printf.sprintf "(%.1f,%d)" t n) other))

(* --- Work --- *)

let test_work_measure () =
  let (), c = Work.measure (fun () -> ignore (Hash.of_string "x")) in
  Alcotest.(check int) "one hash measured" 1 c.Work.hashes;
  let (), c2 =
    Work.measure (fun () -> Work.note_node_write ~bytes:100)
  in
  Alcotest.(check int) "node write" 1 c2.Work.node_writes;
  Alcotest.(check int) "bytes" 100 c2.Work.bytes_written

(* --- Lhist --- *)

(* Merging two histograms is bucket-exact: the merged bucket list equals
   the histogram that saw every sample directly, so quantile estimates
   never depend on how the samples were partitioned across domains. *)
let test_lhist_merge_bucket_alignment () =
  let rng = Rng.create 7 in
  let xs = Array.init 500 (fun _ -> Rng.float rng *. 10.) in
  let a = Lhist.create () and b = Lhist.create () and all = Lhist.create () in
  Array.iteri (fun i x -> Lhist.add (if i mod 2 = 0 then a else b) x) xs;
  Array.iter (Lhist.add all) xs;
  let m = Lhist.merge a b in
  Alcotest.(check int) "count" (Lhist.count all) (Lhist.count m);
  Alcotest.(check (float 1e-9)) "sum" (Lhist.sum all) (Lhist.sum m);
  Alcotest.(check (float 0.)) "min" (Lhist.min_value all) (Lhist.min_value m);
  Alcotest.(check (float 0.)) "max" (Lhist.max_value all) (Lhist.max_value m);
  Alcotest.(check (list (triple (float 0.) (float 0.) int)))
    "buckets align" (Lhist.buckets all) (Lhist.buckets m);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%.0f" (p *. 100.))
        (Lhist.percentile all p) (Lhist.percentile m p))
    [ 0.5; 0.9; 0.99; 1.0 ]

let test_lhist_merge_incompatible () =
  let a = Lhist.create () in
  let b = Lhist.create ~buckets_per_octave:4 () in
  let c = Lhist.create ~lo:1e-6 () in
  Alcotest.check_raises "bucket count mismatch"
    (Invalid_argument "Lhist.merge: incompatible geometries") (fun () ->
      ignore (Lhist.merge a b));
  Alcotest.check_raises "lo mismatch"
    (Invalid_argument "Lhist.merge: incompatible geometries") (fun () ->
      ignore (Lhist.merge a c))

(* --- Stats spill-aware merge --- *)

let test_stats_merge_spilled () =
  (* Push one side past the spill threshold; the merge must stay exact on
     count/total/min/max and bucket-accurate on percentiles. *)
  let rng = Rng.create 11 in
  let n = 9000 in
  let xs = Array.init n (fun _ -> Rng.float rng *. 4.) in
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  Array.iter (Stats.add a) xs;
  List.iter (Stats.add b) [ 0.25; 9.5 ];
  Array.iter (Stats.add all) xs;
  List.iter (Stats.add all) [ 0.25; 9.5 ];
  Alcotest.(check bool) "a spilled" false (Stats.is_exact a);
  Alcotest.(check bool) "b exact" true (Stats.is_exact b);
  let m = Stats.merge a b in
  Alcotest.(check bool) "merge spilled" false (Stats.is_exact m);
  Alcotest.(check int) "count" (n + 2) (Stats.count m);
  Alcotest.(check (float 1e-6)) "total" (Stats.total all) (Stats.total m);
  Alcotest.(check (float 0.)) "min" (Stats.min_value all) (Stats.min_value m);
  Alcotest.(check (float 0.)) "max" 9.5 (Stats.max_value m);
  (* [all] is also spilled, so both sides answer from the same histogram
     geometry: estimates must agree exactly. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%.0f" (p *. 100.))
        (Stats.percentile all p) (Stats.percentile m p))
    [ 0.5; 0.9; 0.99 ]

let test_stats_merge_both_spilled () =
  let rng = Rng.create 13 in
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  for _ = 1 to 9000 do
    let x = Rng.float rng in
    Stats.add a x;
    Stats.add all x
  done;
  for _ = 1 to 9000 do
    let x = 1. +. Rng.float rng in
    Stats.add b x;
    Stats.add all x
  done;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 18000 (Stats.count m);
  Alcotest.(check (float 1e-6)) "total" (Stats.total all) (Stats.total m);
  Alcotest.(check (float 0.)) "p50" (Stats.percentile all 0.5)
    (Stats.percentile m 0.5);
  Alcotest.(check (float 0.)) "p99" (Stats.percentile all 0.99)
    (Stats.percentile m 0.99)

(* --- Rng.split_n --- *)

let test_rng_split_n () =
  (* split_n is repeated split in index order: same child states, and the
     parent ends up at the same point. *)
  let a = Rng.create 42 and b = Rng.create 42 in
  let children = Rng.split_n a 8 in
  let expected = Array.init 8 (fun _ -> Rng.split b) in
  Alcotest.(check int) "eight streams" 8 (Array.length children);
  Array.iteri
    (fun i c ->
      Alcotest.(check int64)
        (Printf.sprintf "stream %d first draw" i)
        (Rng.int64 expected.(i)) (Rng.int64 c))
    children;
  Alcotest.(check int64) "parent advanced identically" (Rng.int64 b)
    (Rng.int64 a);
  Alcotest.(check int) "zero streams" 0 (Array.length (Rng.split_n a 0));
  Alcotest.check_raises "negative" (Invalid_argument "Rng.split_n") (fun () ->
      ignore (Rng.split_n a (-1)))

(* --- Pool --- *)

let with_pool n f =
  let p = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_map_matches_serial () =
  let input = Array.init 101 (fun i -> i) in
  let f i = i * i in
  let expected = Array.map f input in
  List.iter
    (fun n ->
      with_pool n (fun p ->
          Alcotest.(check (array int))
            (Printf.sprintf "size %d" n)
            expected
            (Pool.parallel_map p f input)))
    [ 1; 2; 4 ];
  (* Explicit chunk sizes, including ones that do not divide the input. *)
  with_pool 4 (fun p ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "chunk %d" chunk)
            expected
            (Pool.parallel_map ~chunk p f input))
        [ 1; 7; 100; 1000 ])

let test_pool_cost_map () =
  (* Cost-aware granularity: results and Work accounting must equal the
     serial map at every pool size and threshold — whether the batch
     splits by quantum, lands in one task, or bypasses the pool. *)
  let input = Array.init 101 (fun i -> String.make (i * 13 mod 64) 'x') in
  let f s =
    ignore (Hash.of_string s);
    String.length s
  in
  let expected, serial_work = Work.measure (fun () -> Array.map f input) in
  let saved = Pool.work_threshold () in
  Fun.protect
    ~finally:(fun () -> Pool.set_work_threshold saved)
    (fun () ->
      List.iter
        (fun threshold ->
          Pool.set_work_threshold threshold;
          List.iter
            (fun n ->
              with_pool n (fun p ->
                  let got, work =
                    Work.measure (fun () ->
                        Pool.parallel_map ~cost:String.length p f input)
                  in
                  Alcotest.(check (array int))
                    (Printf.sprintf "size %d threshold %d" n threshold)
                    expected got;
                  Alcotest.(check int)
                    (Printf.sprintf "hashes at size %d threshold %d" n
                       threshold)
                    serial_work.Work.hashes work.Work.hashes))
            [ 1; 2; 4 ])
        [ 0; 64; 1_000_000 ]);
  Alcotest.check_raises "chunk and cost are exclusive"
    (Invalid_argument "Pool.parallel_map: ~chunk and ~cost are exclusive")
    (fun () ->
      with_pool 2 (fun p ->
          ignore (Pool.parallel_map ~chunk:1 ~cost:String.length p f input)))

let test_pool_run_claim_batching () =
  (* Many more tasks than domains: drain claims runs of tasks per atomic
     op, and results must still come back in submission order. *)
  with_pool 4 (fun p ->
      let n = 200 in
      Alcotest.(check (list int))
        "claimed runs preserve order"
        (List.init n Fun.id)
        (Pool.run p (List.init n (fun i () -> i))))

let test_pool_run_order () =
  with_pool 4 (fun p ->
      Alcotest.(check (list string))
        "results in submission order"
        [ "a"; "b"; "c"; "d"; "e" ]
        (Pool.run p
           (List.map (fun s () -> s) [ "a"; "b"; "c"; "d"; "e" ])))

let test_pool_exception () =
  with_pool 2 (fun p ->
      Alcotest.check_raises "first submission-order raise wins"
        (Invalid_argument "task 3") (fun () ->
          ignore
            (Pool.parallel_map ~chunk:1 p
               (fun i ->
                 if i >= 3 then invalid_arg (Printf.sprintf "task %d" i);
                 i)
               (Array.init 8 (fun i -> i)))))

let test_pool_work_merge () =
  (* The Work counters measured around a parallel map equal the serial
     measurement: captures absorb in submission order. *)
  let body i =
    Work.note_node_write ~bytes:(i * 10);
    ignore (Hash.of_string (string_of_int i));
    i
  in
  let input = Array.init 64 (fun i -> i) in
  let expected, serial_work =
    Work.measure (fun () -> Array.map body input)
  in
  List.iter
    (fun n ->
      with_pool n (fun p ->
          let got, work =
            Work.measure (fun () -> Pool.parallel_map p body input)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "values at size %d" n)
            expected got;
          Alcotest.(check int)
            (Printf.sprintf "hashes at size %d" n)
            serial_work.Work.hashes work.Work.hashes;
          Alcotest.(check int)
            (Printf.sprintf "bytes at size %d" n)
            serial_work.Work.bytes_written work.Work.bytes_written))
    [ 1; 2; 4 ]

let test_pool_attribution_merge () =
  (* Attribution accrued inside tasks lands in the submitting domain's
     table, identical to the serial nesting. *)
  let body i =
    Work.with_component "postree" (fun () -> Work.note_hash ~n:(i + 1) ());
    i
  in
  let input = Array.init 16 (fun i -> i) in
  let serial_attr =
    Work.set_attribution true;
    ignore (Array.map body input);
    let a = Work.attribution () in
    Work.set_attribution false;
    Work.reset_attribution ();
    a
  in
  with_pool 4 (fun p ->
      Work.set_attribution true;
      ignore (Pool.parallel_map p body input);
      let got = Work.attribution () in
      Work.set_attribution false;
      Work.reset_attribution ();
      Alcotest.(check int) "one component" 1 (List.length got);
      List.iter2
        (fun (cs, sw) (cg, gw) ->
          Alcotest.(check string) "component" cs cg;
          Alcotest.(check int) "hashes" sw.Work.hashes gw.Work.hashes)
        serial_attr got)

let test_pool_nested_inline () =
  (* A task that itself calls parallel_map must not deadlock: nested
     submissions run inline on the task's domain. *)
  with_pool 2 (fun p ->
      let got =
        Pool.parallel_map ~chunk:1 p
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.parallel_map ~chunk:1 p (fun j -> i + j)
                 (Array.init 4 (fun j -> j))))
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int)) "nested totals"
        (Array.init 6 (fun i -> (4 * i) + 6))
        got)

let test_pool_shutdown_inline () =
  let p = Pool.create 2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check (list int)) "after shutdown runs inline" [ 1; 2 ]
    (Pool.run p [ (fun () -> 1); (fun () -> 2) ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "util"
    [ ("sha256",
       [ Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
         Alcotest.test_case "padding boundaries" `Quick test_sha_padding_boundaries;
         Alcotest.test_case "hmac RFC4231" `Quick test_hmac_vectors;
         Alcotest.test_case "reset reuses the context" `Quick
           test_sha_reset_reuse;
         Alcotest.test_case "use after finalize raises" `Quick
           test_sha_use_after_finalize;
         Alcotest.test_case "digest_into offsets and bounds" `Quick
           test_sha_digest_into ]
       @ qsuite [ prop_incremental_matches_oneshot ]);
      ("hex",
       [ Alcotest.test_case "invalid input" `Quick test_hex_invalid ]
       @ qsuite [ prop_hex_roundtrip ]);
      ("hash",
       [ Alcotest.test_case "domain separation" `Quick test_hash_domain_separation;
         Alcotest.test_case "kv unambiguous" `Quick test_hash_kv_unambiguous;
         Alcotest.test_case "combine_feed streams" `Quick
           test_hash_combine_feed;
         Alcotest.test_case "batched digests" `Quick test_hash_digest_many ]);
      ("codec",
       [ Alcotest.test_case "malformed input" `Quick test_codec_malformed;
         Alcotest.test_case "trailing bytes" `Quick test_codec_trailing ]
       @ qsuite [ prop_varint_roundtrip; prop_string_roundtrip; prop_list_roundtrip ]);
      ("rng",
       [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
         Alcotest.test_case "split independence" `Quick test_rng_split_independent;
         Alcotest.test_case "split_n" `Quick test_rng_split_n;
         Alcotest.test_case "float range" `Quick test_rng_float_range;
         Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation ]
       @ qsuite [ prop_int_below_in_range ]);
      ("zipf",
       [ Alcotest.test_case "uniform when theta=0" `Quick test_zipf_uniform_when_theta_zero;
         Alcotest.test_case "skewed when theta=0.99" `Quick test_zipf_skew ]
       @ qsuite [ prop_zipf_in_range ]);
      ("stats",
       [ Alcotest.test_case "basic accumulators" `Quick test_stats_basic;
         Alcotest.test_case "empty" `Quick test_stats_empty;
         Alcotest.test_case "merge" `Quick test_stats_merge;
         Alcotest.test_case "merge spilled + exact" `Quick test_stats_merge_spilled;
         Alcotest.test_case "merge both spilled" `Quick test_stats_merge_both_spilled;
         Alcotest.test_case "histogram" `Quick test_histogram ]);
      ("lhist",
       [ Alcotest.test_case "merge bucket alignment" `Quick
           test_lhist_merge_bucket_alignment;
         Alcotest.test_case "merge incompatible geometry" `Quick
           test_lhist_merge_incompatible ]);
      ("work",
       [ Alcotest.test_case "measure" `Quick test_work_measure ]);
      ("pool",
       [ Alcotest.test_case "map matches serial" `Quick test_pool_map_matches_serial;
         Alcotest.test_case "cost-aware map matches serial" `Quick
           test_pool_cost_map;
         Alcotest.test_case "claim batching preserves order" `Quick
           test_pool_run_claim_batching;
         Alcotest.test_case "run preserves order" `Quick test_pool_run_order;
         Alcotest.test_case "exception propagation" `Quick test_pool_exception;
         Alcotest.test_case "work counter merge" `Quick test_pool_work_merge;
         Alcotest.test_case "attribution merge" `Quick test_pool_attribution_merge;
         Alcotest.test_case "nested runs inline" `Quick test_pool_nested_inline;
         Alcotest.test_case "shutdown degrades to inline" `Quick
           test_pool_shutdown_inline ]) ]
